(* Persistent plan store: disk round trips, quarantine of every
   corruption mode, byte-budget eviction, and warm restarts that are
   byte-identical to cold runs under both engines. *)

open Helpers
module Store = Cst_service.Plan_store
module Cache = Cst_service.Plan_cache
module Service = Cst_service.Service

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "cst-plan-store-test-%d" !counter)
    in
    (* leftovers from an earlier run would perturb the counters *)
    if Sys.file_exists d then
      Array.iter
        (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
        (Sys.readdir d);
    d

let compile ~n pairs =
  Result.get_ok
    (Padr.Plan.compile ~producer:Padr.Plan.Engine (topo n) (set ~n pairs))

let store_roundtrip () =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  let plan = compile ~n:8 [ (0, 3); (1, 2); (4, 7) ] in
  Store.store st ~algo:"csa" ~engine:true plan;
  check_int "one entry" 1 (Store.stats st).entries;
  (match
     Store.find st ~algo:"csa" ~engine:true ~shape:plan.shape ~base:plan.base
       ~canon:plan.canon
   with
  | None -> Alcotest.fail "stored plan must be found"
  | Some p ->
      check_true "canon" (Cst.Canon.equal p.canon plan.canon);
      check_true "log digest"
        (Cst.Exec_log.digest p.log = Cst.Exec_log.digest plan.log));
  (* same canon under another key is a miss, not a false share *)
  check_true "engine:false misses"
    (Store.find st ~algo:"csa" ~engine:false ~shape:plan.shape ~base:plan.base
       ~canon:plan.canon
    = None);
  check_true "other algo misses"
    (Store.find st ~algo:"upper" ~engine:true ~shape:plan.shape ~base:plan.base
       ~canon:plan.canon
    = None);
  let s = Store.stats st in
  check_int "one hit" 1 s.hits;
  check_int "two misses" 2 s.misses;
  (* a fresh handle on the same directory sees the persisted entry *)
  let st2 = Store.open_dir dir in
  check_true "warm reopen hits"
    (Store.find st2 ~algo:"csa" ~engine:true ~shape:plan.shape ~base:plan.base
       ~canon:plan.canon
    <> None)

(* Each corruption mode: read_file reports the matching typed error, and
   the store quarantines the file (renamed *.corrupt) and misses — no
   exception, no wrong plan. *)
let corrupt_and_probe ~name corrupt check_err =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  let plan = compile ~n:8 [ (0, 3); (1, 2); (4, 7) ] in
  Store.store st ~algo:"csa" ~engine:true plan;
  let file =
    match
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun f -> Filename.check_suffix f ".plan")
    with
    | [ f ] -> Filename.concat dir f
    | l -> Alcotest.failf "expected one .plan file, found %d" (List.length l)
  in
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let b = corrupt b in
  let oc = open_out_bin file in
  output_bytes oc b;
  close_out oc;
  (match Padr.Plan.Codec.read_file ~path:file with
  | Ok _ -> Alcotest.failf "%s: corrupt file must not decode" name
  | Error e ->
      check_true
        (Printf.sprintf "%s: typed error (got %s)" name
           (Format.asprintf "%a" Padr.Plan.Codec.pp_error e))
        (check_err e));
  (* a fresh handle faults the corrupt file in: quarantine and miss *)
  let st2 = Store.open_dir dir in
  check_true
    (name ^ ": store misses")
    (Store.find st2 ~algo:"csa" ~engine:true ~shape:plan.shape ~base:plan.base
       ~canon:plan.canon
    = None);
  let s = Store.stats st2 in
  check_int (name ^ ": corrupt counted") 1 s.corrupt;
  check_int (name ^ ": no hit") 0 s.hits;
  check_true
    (name ^ ": quarantined")
    (Array.exists
       (fun f -> Filename.check_suffix f ".corrupt")
       (Sys.readdir dir));
  check_true
    (name ^ ": no .plan left")
    (not
       (Array.exists
          (fun f -> Filename.check_suffix f ".plan")
          (Sys.readdir dir)))

let corruption_truncated () =
  corrupt_and_probe ~name:"truncated"
    (fun b -> Bytes.sub b 0 (Bytes.length b / 2))
    (function
      (* a mid-file cut may land in the plan header or in the embedded
         log section; both are Truncated, just at different layers *)
      | Padr.Plan.Codec.Truncated _
      | Padr.Plan.Codec.Log (Cst.Exec_log.Codec.Truncated _) ->
          true
      | _ -> false)

let corruption_arena_flip () =
  corrupt_and_probe ~name:"arena flip"
    (fun b ->
      let pos = Bytes.length b - 4 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
      b)
    (function
      | Padr.Plan.Codec.Log
          (Cst.Exec_log.Codec.Digest_mismatch | Cst.Exec_log.Codec.Bad_word _)
        ->
          true
      | _ -> false)

let corruption_version () =
  corrupt_and_probe ~name:"wrong version"
    (fun b ->
      Bytes.set b 8 '\007';
      b)
    (function
      | Padr.Plan.Codec.Unsupported_version { found = 7; _ } -> true
      | _ -> false)

let corruption_canon_hash () =
  corrupt_and_probe ~name:"wrong canon hash"
    (fun b ->
      (* the embedded log section's canon-hash field; the log arena
         digest does not cover it, so only the plan-level cross-check
         can catch the splice *)
      let n = Char.code (Bytes.get b 64) lor (Char.code (Bytes.get b 65) lsl 8) in
      let pos = 80 + (8 * n) + 16 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
      b)
    (function Padr.Plan.Codec.Canon_mismatch -> true | _ -> false)

let eviction () =
  let dir = temp_dir () in
  let plan = compile ~n:8 [ (0, 3); (1, 2); (4, 7) ] in
  (* room for the largest plan plus a sliver — never all three *)
  let st =
    Store.open_dir ~max_bytes:(Padr.Plan.Codec.encoded_bytes plan + 128) dir
  in
  let plans =
    List.map
      (fun pairs -> compile ~n:8 pairs)
      [ [ (0, 3); (1, 2); (4, 7) ]; [ (0, 7); (1, 6) ]; [ (2, 5); (3, 4) ] ]
  in
  List.iter (fun p -> Store.store st ~algo:"csa" ~engine:true p) plans;
  let s = Store.stats st in
  check_true "evicted at least once" (s.evictions >= 1);
  check_true "budget respected" (s.bytes <= s.max_bytes);
  (* the newest plan survived *)
  let last = List.nth plans 2 in
  check_true "most recent resident"
    (Store.find st ~algo:"csa" ~engine:true ~shape:last.shape ~base:last.base
       ~canon:last.canon
    <> None)

let cache_flush_warm () =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  let cache = Cache.create ~store:st ~domains:1 () in
  let plan = compile ~n:8 [ (0, 3); (1, 2) ] in
  let key =
    { Cache.algo = "csa"; engine = true; shape = plan.shape;
      base = plan.base; canon = plan.canon }
  in
  Cache.add cache ~worker:0 key plan;
  check_int "nothing on disk before flush" 0 (Store.stats st).stores;
  Cache.flush cache;
  check_int "flush persisted it" 1 (Store.stats st).stores;
  Cache.flush cache;
  check_int "flush is idempotent" 1 (Store.stats st).stores;
  (* a brand-new cache over a fresh handle faults the plan from disk *)
  let st2 = Store.open_dir dir in
  let cache2 = Cache.create ~store:st2 ~domains:1 () in
  (match Cache.find cache2 ~worker:0 key with
  | None -> Alcotest.fail "warm cache must fault the plan in"
  | Some p ->
      check_true "faulted plan digest"
        (Cst.Exec_log.digest p.log = Cst.Exec_log.digest plan.log));
  let cs = Cache.stats cache2 in
  check_int "memory tier missed" 1 cs.misses;
  (match cs.store with
  | None -> Alcotest.fail "stats must surface the disk tier"
  | Some ss -> check_int "disk tier hit" 1 ss.hits);
  (* now resident: the second lookup is a memory hit *)
  ignore (Cache.find cache2 ~worker:0 key);
  check_int "then memory hit" 1 (Cache.stats cache2).hits

let jobs_of engine =
  List.mapi
    (fun id pairs -> Service.job ~id ~algo:"csa" ~engine (set ~n:16 pairs))
    [
      [ (0, 7); (1, 6); (8, 15) ];
      [ (0, 7); (1, 6); (8, 15) ];
      (* same shape translated: replays the same plan *)
      [ (2, 5); (8, 11) ];
      [ (6, 9) ];
    ]

let warm_service_equiv engine () =
  let dir = temp_dir () in
  let jobs = jobs_of engine in
  let cold =
    List.map Service.outcome_to_string (Service.run ~domains:1 jobs)
  in
  let populate =
    List.map Service.outcome_to_string
      (Service.run ~domains:1 ~store:(Store.open_dir dir) jobs)
  in
  (* a restarted service over the same directory replays from disk *)
  let st = Store.open_dir dir in
  let warm =
    List.map Service.outcome_to_string (Service.run ~domains:1 ~store:st jobs)
  in
  check_true "populating run matches cold" (populate = cold);
  check_true "warm restart matches cold" (warm = cold);
  check_true "warm run actually hit the disk tier"
    ((Store.stats st).hits > 0)

let suite =
  [
    case "store round trip and keying" store_roundtrip;
    case "corruption: truncated file" corruption_truncated;
    case "corruption: flipped arena byte" corruption_arena_flip;
    case "corruption: wrong version" corruption_version;
    case "corruption: wrong canon hash" corruption_canon_hash;
    case "byte-budget eviction" eviction;
    case "cache flush and warm fault-in" cache_flush_warm;
    case "warm restart ≡ cold (message-passing)"
      (warm_service_equiv Service.Message_passing);
    case "warm restart ≡ cold (segmented)"
      (warm_service_equiv Service.Segmented);
  ]

open Helpers

let sample = set ~n:16 [ (0, 15); (1, 6); (2, 3); (4, 5); (8, 13); (9, 10) ]

let check_algo (a : Cst_baselines.Registry.algo) =
  let t = topo 16 in
  let s = a.run t sample in
  let r =
    Padr.Verify.schedule ~check_rounds_optimal:a.caps.round_optimal t sample s
  in
  check_true (a.name ^ " verifies: " ^ String.concat ";" r.issues) r.ok

let test_all_correct () =
  List.iter check_algo Cst_baselines.Registry.all

let test_registry_lookup () =
  check_true "finds csa" (Cst_baselines.Registry.find "csa" <> None);
  check_true "unknown" (Cst_baselines.Registry.find "quantum" = None);
  check_int "six algorithms" 6 (List.length Cst_baselines.Registry.names)

let test_naive_round_count () =
  let s = Cst_baselines.Naive.run (topo 16) sample in
  check_int "one comm per round" (Cst_comm.Comm_set.size sample)
    (Padr.Schedule.num_rounds s)

let test_roy_ids_valid_coloring () =
  let t = topo 16 in
  let ids = Cst_baselines.Roy_id.assign_ids t sample in
  List.iter
    (fun (c1, id1) ->
      List.iter
        (fun (c2, id2) ->
          if (not (Cst_comm.Comm.equal c1 c2)) && id1 = id2 then
            check_true "same id never conflicts"
              (not (Cst.Compat.conflict t c1 c2)))
        ids)
    ids

let test_roy_rounds_near_width () =
  let t = topo 64 in
  let rng = Cst_util.Prng.create 3 in
  for _ = 1 to 20 do
    let s = Cst_workloads.Gen_wn.uniform rng ~n:64 ~density:0.8 in
    let w = Cst_comm.Width.width ~leaves:64 s in
    let ids = Cst_baselines.Roy_id.num_ids t s in
    check_true
      (Printf.sprintf "w <= ids (%d <= %d)" w ids)
      (w <= max 1 ids || Cst_comm.Comm_set.size s = 0);
    check_true
      (Printf.sprintf "ids within 2x width (%d vs %d)" ids (2 * w))
      (ids <= max 1 (2 * w))
  done

let test_depth_rounds () =
  (* Depth scheduling uses max nesting depth, which exceeds the width on
     sets like {(0,7),(2,3)} — the CSA stays width-exact. *)
  let t = topo 8 in
  let s = set ~n:8 [ (0, 7); (2, 3) ] in
  check_int "depth needs 2 rounds" 2 (Cst_baselines.Depth_sched.rounds_needed s);
  let depth_sched = Cst_baselines.Depth_sched.run t s in
  let csa_sched = Padr.Csa.run_exn t s in
  check_int "depth rounds" 2 (Padr.Schedule.num_rounds depth_sched);
  check_int "csa rounds" 1 (Padr.Schedule.num_rounds csa_sched);
  check_true "depth still delivers"
    (Padr.Schedule.all_deliveries depth_sched = Cst_comm.Comm_set.matching s)

let test_depth_rejects_crossing () =
  check_raises_invalid "crossing set" (fun () ->
      Cst_baselines.Depth_sched.run (topo 8) (set ~n:8 [ (0, 2); (1, 3) ]))

let test_greedy_batches_compatible () =
  let t = topo 16 in
  let batches = Cst_baselines.Greedy.batches t sample in
  List.iter
    (fun b -> check_true "batch compatible" (Cst.Compat.is_compatible t b))
    batches;
  check_int "partition size" (Cst_comm.Comm_set.size sample)
    (List.length (List.concat batches))

let test_rounds_lower_bound () =
  let t = topo 16 in
  let w = Cst_baselines.Bounds.rounds t sample in
  List.iter
    (fun (a : Cst_baselines.Registry.algo) ->
      let s = a.run t sample in
      check_true
        (a.name ^ " respects the width lower bound")
        (Padr.Schedule.num_rounds s >= w))
    Cst_baselines.Registry.all

let test_min_connects_bound () =
  let t = topo 16 in
  let floor_ = Cst_baselines.Bounds.min_connects_per_switch t sample in
  let s = Padr.Csa.run_exn t sample in
  Array.iteri
    (fun node f ->
      if node >= 1 && node < 16 then
        check_true
          (Printf.sprintf "switch %d: csa >= floor" node)
          (s.power.per_switch_connects.(node) >= f))
    floor_

let test_min_total_connects () =
  let t = topo 16 in
  let s = Padr.Csa.run_exn t sample in
  check_true "total floor"
    (s.power.total_connects >= Cst_baselines.Bounds.min_total_connects t sample)

let test_onion_writes_contrast () =
  (* The headline behaviour: ID scheduling pays w writes at the root
     switches, CSA pays O(1). *)
  let n = 64 in
  let t = topo n in
  let s = Cst_workloads.Gen_wn.onion ~n ~width:16 in
  let csa = Padr.Csa.run_exn t s in
  let roy = Cst_baselines.Roy_id.run t s in
  check_true "csa constant writes" (csa.power.max_writes_per_switch <= 4);
  check_int "roy writes scale with width" 16 roy.power.max_writes_per_switch

let test_runner_rejects_bad_partition () =
  let t = topo 8 in
  let s = set ~n:8 [ (0, 1); (2, 3) ] in
  check_raises_invalid "not a partition" (fun () ->
      Cst_baselines.Round_runner.run ~name:"bad" t s [ [ comm (0, 1) ] ])

let test_runner_rejects_conflicting_batch () =
  let t = topo 8 in
  check_raises_invalid "conflicting batch" (fun () ->
      Cst_baselines.Round_runner.config_for_batch t
        [ comm (0, 7); comm (1, 6) ])

let test_config_for_batch_routes () =
  let t = topo 8 in
  let wants =
    Cst_baselines.Round_runner.config_for_batch t [ comm (0, 7); comm (2, 3) ]
  in
  let net = Cst.Net.create t in
  for node = 1 to 7 do
    Cst.Net.reconfigure net ~node wants.(node)
  done;
  check_true "0 -> 7" (Cst.Data_plane.route net ~src:0 = Some 7);
  check_true "2 -> 3" (Cst.Data_plane.route net ~src:2 = Some 3)

let prop_baselines_correct =
  prop ~count:40 "all baselines deliver the matching" (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      let t = Cst.Topology.create ~leaves in
      List.for_all
        (fun (a : Cst_baselines.Registry.algo) ->
          let sched = a.run t s in
          Padr.Schedule.all_deliveries sched = Cst_comm.Comm_set.matching s)
        Cst_baselines.Registry.all)

let prop_csa_beats_baseline_writes =
  prop ~count:40 "CSA never writes more than ID scheduling" (fun params ->
      let s = set_of_params params in
      let leaves = Cst_util.Bits.ceil_pow2 (max 2 (Cst_comm.Comm_set.n s)) in
      let t = Cst.Topology.create ~leaves in
      let csa = Padr.Csa.run_exn t s in
      let roy = Cst_baselines.Roy_id.run t s in
      csa.power.max_writes_per_switch <= roy.power.max_writes_per_switch
      && csa.power.total_writes <= roy.power.total_writes)

let suite =
  [
    case "all algorithms correct on sample" test_all_correct;
    case "registry lookup" test_registry_lookup;
    case "naive round count" test_naive_round_count;
    case "roy ids form a valid coloring" test_roy_ids_valid_coloring;
    case "roy rounds near width" test_roy_rounds_near_width;
    case "depth rounds exceed width" test_depth_rounds;
    case "depth rejects crossing" test_depth_rejects_crossing;
    case "greedy batches compatible" test_greedy_batches_compatible;
    case "rounds lower bound" test_rounds_lower_bound;
    case "per-switch connect floor" test_min_connects_bound;
    case "total connect floor" test_min_total_connects;
    case "onion writes contrast" test_onion_writes_contrast;
    case "runner rejects bad partition" test_runner_rejects_bad_partition;
    case "runner rejects conflicting batch" test_runner_rejects_conflicting_batch;
    case "config_for_batch routes" test_config_for_batch_routes;
    prop_baselines_correct;
    prop_csa_beats_baseline_writes;
  ]

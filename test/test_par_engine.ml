open Helpers

(* Segment-parallel engine (Cst_comm.Decompose.blocks +
   Padr.Par_engine + Cst.Exec_log.merge): block decomposition must
   partition the set into disjoint aligned intervals, and the merged
   per-block run must be byte-identical to the sequential engine —
   same structural digest, schedule, power and hardware stats — for
   every domain count, with Theorem 8's alternation bound intact. *)

module D = Cst_comm.Decompose

let blocks_of pairs ~n = D.blocks (set ~n pairs)

let intervals bs = List.map (fun (b : D.block) -> (b.base, b.align)) bs

(* --- Decompose.blocks unit cases ------------------------------------- *)

let test_blocks_empty () =
  check_int "no blocks" 0 (List.length (D.blocks (Cst_comm.Comm_set.empty ~n:8)))

let test_blocks_disjoint_pairs () =
  let bs = blocks_of ~n:8 [ (0, 1); (2, 3); (6, 7) ] in
  Alcotest.(check (list (pair int int)))
    "three aligned pair blocks"
    [ (0, 2); (2, 2); (6, 2) ]
    (intervals bs);
  List.iter
    (fun (b : D.block) -> check_int "one comm" 1 (Cst_comm.Comm_set.size b.set))
    bs

let test_blocks_alignment_merges () =
  (* (2,5) straddles the midline: its LCA interval is [0,8), which
     contains (0,1)'s [0,2) — one block despite disjoint comm spans. *)
  let bs = blocks_of ~n:8 [ (0, 1); (2, 5) ] in
  Alcotest.(check (list (pair int int))) "merged" [ (0, 8) ] (intervals bs)

let test_blocks_cascade_merge () =
  (* (4,9)'s interval [0,16) swallows both previously closed groups. *)
  let bs = blocks_of ~n:16 [ (0, 1); (2, 3); (4, 9) ] in
  Alcotest.(check (list (pair int int))) "swallowed" [ (0, 16) ] (intervals bs);
  check_int "all members" 3 (Cst_comm.Comm_set.size (List.hd bs).set)

let test_blocks_root_in_gap () =
  (* (6,7) is a new top-level root but lands inside the merged [0,8)
     interval of (0,5); (1,2) nests under (0,5). *)
  let bs = blocks_of ~n:8 [ (0, 5); (1, 2); (6, 7) ] in
  Alcotest.(check (list (pair int int))) "one block" [ (0, 8) ] (intervals bs);
  check_int "all members" 3 (Cst_comm.Comm_set.size (List.hd bs).set)

let test_blocks_localize () =
  let bs = blocks_of ~n:16 [ (4, 7); (5, 6); (8, 9) ] in
  Alcotest.(check (list (pair int int)))
    "two blocks"
    [ (4, 4); (8, 2) ]
    (intervals bs);
  let local = D.localize (List.hd bs) in
  check_int "local n" 4 (Cst_comm.Comm_set.n local);
  check_true "local members"
    (Cst_comm.Comm_set.equal local (set ~n:4 [ (0, 3); (1, 2) ]))

let test_blocks_rejects_bad_input () =
  check_raises_invalid "left-oriented" (fun () ->
      D.blocks (set ~n:8 [ (3, 1) ]));
  check_raises_invalid "crossing" (fun () ->
      D.blocks (set ~n:8 [ (0, 2); (1, 3) ]))

(* --- Decompose.blocks properties ------------------------------------- *)

let blocks_partition params =
  let s = set_of_params params in
  let bs = D.blocks s in
  (* Disjoint aligned intervals in ascending order... *)
  let ok_geometry =
    List.for_all
      (fun (b : D.block) ->
        b.align > 0
        && b.align land (b.align - 1) = 0
        && b.base mod b.align = 0)
      bs
    &&
    let rec disjoint = function
      | (a : D.block) :: (b : D.block) :: rest ->
          a.base + a.align <= b.base && disjoint (b :: rest)
      | _ -> true
    in
    disjoint bs
  in
  (* ... every member inside its interval ... *)
  let ok_confined =
    List.for_all
      (fun (b : D.block) ->
        Array.for_all
          (fun (c : Cst_comm.Comm.t) ->
            b.base <= c.src && c.dst < b.base + b.align)
          (Cst_comm.Comm_set.comms b.set))
      bs
  in
  (* ... and the concatenation is exactly the input. *)
  let concat =
    List.concat_map
      (fun (b : D.block) ->
        Array.to_list (Cst_comm.Comm_set.comms b.set))
      bs
  in
  let original = Array.to_list (Cst_comm.Comm_set.comms s) in
  ok_geometry && ok_confined && List.equal Cst_comm.Comm.equal concat original

(* --- merged run == sequential run ------------------------------------ *)

let stats_eq (a : Padr.Engine.stats) (b : Padr.Engine.stats) =
  a.cycles = b.cycles
  && a.control_messages = b.control_messages
  && a.max_message_words = b.max_message_words
  && a.state_words_per_switch = b.state_words_per_switch

let par_equals_sequential params =
  let s = set_of_params params in
  let topo = Padr.topology_for s in
  let seq_log = Cst.Exec_log.create () in
  let seq_sched, seq_stats = Padr.Engine.run_exn ~log:seq_log topo s in
  let seq_digest = Cst.Exec_log.digest seq_log in
  List.for_all
    (fun domains ->
      let log = Cst.Exec_log.create () in
      match Padr.Par_engine.run ~domains ~log topo s with
      | Error _ -> false
      | Ok (sched, stats) ->
          Cst.Exec_log.digest log = seq_digest
          && stats_eq stats seq_stats
          && sched.Padr.Schedule.cycles = seq_sched.Padr.Schedule.cycles
          && sched.power = seq_sched.power
          && Padr.Schedule.all_deliveries sched
             = Padr.Schedule.all_deliveries seq_sched)
    [ 1; 2; 4; 8 ]

let merged_alternations_match_sequential params =
  let s = set_of_params params in
  let topo = Padr.topology_for s in
  let seq_log = Cst.Exec_log.create () in
  let _ = Padr.Engine.run_exn ~log:seq_log topo s in
  let log = Cst.Exec_log.create () in
  match Padr.Par_engine.run ~domains:4 ~log topo s with
  | Error _ -> false
  | Ok _ ->
      (* Per-switch alternation counts survive the merge exactly, and
         stay within the envelope random sets obey (the strict Theorem 8
         constant is certified on width-controlled families below). *)
      let touched = Hashtbl.create 64 in
      Cst.Exec_log.iter log (function
        | Cst.Exec_log.Connect { node; _ } -> Hashtbl.replace touched node ()
        | _ -> ());
      Hashtbl.fold
        (fun node () ok ->
          let merged = Cst.Exec_log.driver_alternations log ~node in
          ok
          && merged = Cst.Exec_log.driver_alternations seq_log ~node
          && merged <= Padr.Verify.default_power_bound)
        touched true

(* The Theorem 8 certificate on the merged log: across widths 2..256
   the busiest port of the segment-parallel run alternates at most
   twice, exactly as the sequential CSA does. *)
let test_merged_alternations_flat_in_width () =
  let n = 1024 in
  let topo = Cst.Topology.create ~leaves:n in
  List.iter
    (fun w ->
      let rng = Cst_util.Prng.create (100 + w) in
      let s = Cst_workloads.Gen_wn.with_width rng ~n ~width:w in
      let log = Cst.Exec_log.create () in
      let _ = Result.get_ok (Padr.Par_engine.run ~domains:2 ~log topo s) in
      for node = 1 to n - 1 do
        check_true
          (Printf.sprintf "<= 2 alternations at width %d node %d" w node)
          (Cst.Exec_log.driver_alternations log ~node <= 2)
      done)
    [ 2; 4; 8; 16; 32; 64; 128; 256 ]

let test_par_empty_set () =
  let s = Cst_comm.Comm_set.empty ~n:8 in
  let topo = Padr.topology_for s in
  let seq_log = Cst.Exec_log.create () in
  let _ = Padr.Engine.run_exn ~log:seq_log topo s in
  let log = Cst.Exec_log.create () in
  let sched, _ =
    Result.get_ok (Padr.Par_engine.run ~log topo s)
  in
  check_int "zero rounds" 0 (Padr.Schedule.num_rounds sched);
  check_true "digest"
    (Cst.Exec_log.digest log = Cst.Exec_log.digest seq_log)

let test_par_rejects_crossing () =
  let s = set ~n:8 [ (0, 2); (1, 3) ] in
  let topo = Padr.topology_for s in
  match Padr.Par_engine.run topo s with
  | Error (Padr.Csa.Not_well_nested _) -> ()
  | _ -> Alcotest.fail "expected Not_well_nested"

(* --- Exec_log.merge edge cases --------------------------------------- *)

let single_run_log ~n pairs =
  let s = set ~n pairs in
  let topo = Padr.topology_for s in
  let log = Cst.Exec_log.create () in
  let _ = Padr.Engine.run_exn ~log topo s in
  log

let test_merge_levels_mismatch () =
  let log = single_run_log ~n:8 [ (0, 3) ] in
  check_raises_invalid "levels mismatch" (fun () ->
      Cst.Exec_log.merge ~levels:5 [ log ])

let test_merge_rejects_truncated () =
  let log = single_run_log ~n:8 [ (0, 3) ] in
  let truncated = Cst.Exec_log.create () in
  Cst.Exec_log.iter ~upto:(Cst.Exec_log.length log - 1) log
    (Cst.Exec_log.append truncated);
  check_raises_invalid "missing run-end" (fun () ->
      Cst.Exec_log.merge ~levels:3 [ truncated ])

let test_merge_into_appends () =
  let log = single_run_log ~n:8 [ (0, 3); (1, 2) ] in
  let into = Cst.Exec_log.create () in
  Cst.Exec_log.deliver into ~src:0 ~dst:1;
  let from = Cst.Exec_log.length into in
  let merged = Cst.Exec_log.merge ~into ~levels:3 [ log ] in
  check_true "same log" (merged == into);
  check_true "suffix digest"
    (Cst.Exec_log.digest ~from merged = Cst.Exec_log.digest log)

let suite =
  [
    case "blocks: empty set" test_blocks_empty;
    case "blocks: disjoint pairs" test_blocks_disjoint_pairs;
    case "blocks: alignment merges disjoint spans" test_blocks_alignment_merges;
    case "blocks: wide root swallows closed groups" test_blocks_cascade_merge;
    case "blocks: root in interval gap" test_blocks_root_in_gap;
    case "blocks: localize shifts to block coordinates" test_blocks_localize;
    case "blocks: rejects non-right-oriented / crossing"
      test_blocks_rejects_bad_input;
    prop "blocks partition into disjoint aligned intervals" blocks_partition;
    prop "par run == sequential engine (domains 1/2/4/8)" ~count:200
      par_equals_sequential;
    prop "merged alternation counts == sequential" ~count:60
      merged_alternations_match_sequential;
    case "merged log keeps <=2 alternations across widths"
      test_merged_alternations_flat_in_width;
    case "par: empty set" test_par_empty_set;
    case "par: rejects crossing set" test_par_rejects_crossing;
    case "merge: levels mismatch raises" test_merge_levels_mismatch;
    case "merge: truncated run raises" test_merge_rejects_truncated;
    case "merge: ?into appends" test_merge_into_appends;
  ]

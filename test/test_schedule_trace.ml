open Helpers

let sched () = schedule ~n:8 [ (0, 7); (1, 2); (3, 4) ]

let test_all_deliveries_sorted () =
  let s = sched () in
  let d = Padr.Schedule.all_deliveries s in
  check_true "sorted by source" (d = List.sort compare d);
  check_true "content" (d = [ (0, 7); (1, 2); (3, 4) ])

let test_deliveries_per_round () =
  let s = sched () in
  check_true "per round counts"
    (Padr.Schedule.deliveries_per_round s = [| 1; 2 |])

let test_pp_smoke () =
  let s = sched () in
  let txt = Format.asprintf "%a" Padr.Schedule.pp s in
  check_true "mentions rounds" (String.length txt > 40)

let test_round_snapshot_nonempty () =
  let s = sched () in
  Array.iter
    (fun (r : Padr.Schedule.round) ->
      check_true "has configs" (Array.length r.configs > 0))
    s.rounds

let test_combine_power_accumulates () =
  let s = sched () in
  let doubled = Padr.Schedule.combine_power s.power s.power in
  check_int "totals add" (2 * s.power.total_connects) doubled.total_connects;
  check_int "writes add" (2 * s.power.total_writes) doubled.total_writes;
  (* the same switch busy in both parts accumulates: maxima are
     recomputed from the summed arrays, not maxed *)
  check_int "maxima recomputed" (2 * s.power.max_connects_per_switch)
    doubled.max_connects_per_switch;
  let zero = Padr.Schedule.zero_power ~num_nodes:15 in
  let same = Padr.Schedule.combine_power s.power zero in
  check_int "zero is neutral for totals" s.power.total_connects
    same.total_connects;
  check_int "zero is neutral for maxima" s.power.max_connects_per_switch
    same.max_connects_per_switch

let test_mirror_power_preserves_totals () =
  let s = sched () in
  let t = Cst.Topology.create ~leaves:8 in
  let m = Padr.Schedule.mirror_power t s.power in
  check_int "total invariant" s.power.total_connects m.total_connects;
  check_int "max invariant" s.power.max_connects_per_switch
    m.max_connects_per_switch;
  (* reflecting twice is the identity on the arrays *)
  let mm = Padr.Schedule.mirror_power t m in
  check_true "involution"
    (mm.per_switch_connects = s.power.per_switch_connects)

let test_trace_of_log () =
  let log = Cst.Exec_log.create () in
  Cst.Exec_log.round_begin log ~index:1;
  Cst.Exec_log.run_end log ~rounds:1;
  let t = Cst.Trace.of_log log in
  check_int "two events" 2 (Cst.Trace.length t);
  check_true "order preserved"
    (Cst.Trace.events t
    = [ Cst.Trace.Round_start 1; Cst.Trace.Finished { rounds = 1 } ])

let test_trace_of_empty_log () =
  let t = Cst.Trace.of_log (Cst.Exec_log.create ()) in
  check_int "no events" 0 (Cst.Trace.length t)

let test_trace_pp () =
  let log = Cst.Exec_log.create () in
  Cst.Exec_log.round_begin log ~index:1;
  Cst.Exec_log.deliver log ~src:2 ~dst:5;
  let txt = Format.asprintf "%a" Cst.Trace.pp (Cst.Trace.of_log log) in
  check_true "mentions PEs" (String.length txt > 10)

let test_trace_full_run_round_count () =
  let log = Cst.Exec_log.create () in
  let _ = Padr.Csa.run_exn ~log (topo 8) (set ~n:8 [ (0, 7); (1, 6) ]) in
  let starts =
    List.length
      (List.filter
         (function Cst.Trace.Round_start _ -> true | _ -> false)
         (Cst.Trace.events (Cst.Trace.of_log log)))
  in
  check_int "a start per round" 2 starts

let suite =
  [
    case "all_deliveries sorted" test_all_deliveries_sorted;
    case "deliveries per round" test_deliveries_per_round;
    case "pp smoke" test_pp_smoke;
    case "round snapshots" test_round_snapshot_nonempty;
    case "combine_power accumulates" test_combine_power_accumulates;
    case "mirror_power preserves totals" test_mirror_power_preserves_totals;
    case "trace of_log" test_trace_of_log;
    case "trace of empty log" test_trace_of_empty_log;
    case "trace pp" test_trace_pp;
    case "trace round count" test_trace_full_run_round_count;
  ]

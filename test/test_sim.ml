open Helpers
open Cst_sim

let small_trace () =
  let rng = Cst_util.Prng.create 12 in
  Traffic.random_well_nested rng ~leaves:32 ~phases:6 ()

let test_traffic_make () =
  let t = small_trace () in
  check_int "phases" 6 (Traffic.length t);
  check_true "has traffic" (Traffic.total_comms t > 0)

let test_traffic_validation () =
  (match Traffic.make ~leaves:6 [] with
  | Error (Traffic.Leaves_not_power_of_two 6) -> ()
  | _ -> Alcotest.fail "npot leaves accepted");
  (match
     Traffic.make ~leaves:8
       [ { Traffic.label = "big"; set = set ~n:16 [ (0, 15) ] } ]
   with
  | Error (Traffic.Phase_overflow { label = "big"; n = 16; leaves = 8 }) -> ()
  | _ -> Alcotest.fail "oversized phase accepted");
  check_raises_invalid "make_exn raises" (fun () ->
      Traffic.make_exn ~leaves:6 []);
  check_raises_invalid "bad densities" (fun () ->
      Traffic.random_well_nested (Cst_util.Prng.create 1) ~leaves:8 ~phases:1
        ~density_lo:0.9 ~density_hi:0.1 ())

let test_traffic_from_suite () =
  let rng = Cst_util.Prng.create 9 in
  let t = Traffic.from_suite rng ~leaves:32 ~rounds:2 in
  check_int "all workloads twice"
    (2 * List.length Cst_workloads.Suite.all)
    (Traffic.length t)

let test_run_padr () =
  let t = small_trace () in
  let r = Runner.run_padr t in
  check_int "per-phase results" 6 (List.length r.phases);
  check_true "rounds accumulate" (r.rounds > 0);
  List.iter
    (fun (p : Runner.phase_result) ->
      check_true "rounds >= width within a phase" (p.rounds >= p.width);
      check_int "well-nested phases are one wave" 1 p.waves)
    r.phases;
  check_true "ledger adds up"
    (r.power.total_writes
    = List.fold_left (fun a (p : Runner.phase_result) -> a + p.writes) 0 r.phases)

let test_run_baseline () =
  let t = small_trace () in
  let r = Runner.run_baseline Cst_baselines.Registry.roy_id t in
  check_int "phases" 6 (List.length r.phases);
  check_true "named" (r.scheduler = "roy-id")

let test_compare_all () =
  let t = small_trace () in
  let results = Runner.compare_all t in
  check_int "padr + five baselines" 6 (List.length results);
  let padr = List.assoc "padr" results in
  let roy = List.assoc "roy-id" results in
  let naive = List.assoc "naive" results in
  check_true "padr never writes more than roy"
    (padr.power.total_writes <= roy.power.total_writes);
  check_true "roy never writes more than naive"
    (roy.power.total_writes <= naive.power.total_writes);
  check_true "energy ratio <= 1" (Runner.energy_ratio padr roy <= 1.0)

let test_padr_handles_mixed_phases () =
  let rng = Cst_util.Prng.create 77 in
  let phases =
    List.init 4 (fun i ->
        {
          Traffic.label = Printf.sprintf "arb-%d" i;
          set = Cst_workloads.Gen_arbitrary.random_pairs rng ~n:32 ~pairs:10;
        })
  in
  let t = Traffic.make_exn ~leaves:32 phases in
  let r = Runner.run_padr t in
  check_int "all phases ran" 4 (List.length r.phases);
  List.iter
    (fun (p : Runner.phase_result) ->
      check_true "waves cover the phase" (p.waves >= 1))
    r.phases

let test_carry_over_across_phases () =
  (* A trace repeating the same width-1 phase: the warm PADR runner pays
     only in the first phase. *)
  let phase =
    { Traffic.label = "rep"; set = Cst_workloads.Gen_wn.pairs ~n:32 }
  in
  let t = Traffic.make_exn ~leaves:32 [ phase; phase; phase ] in
  let r = Runner.run_padr t in
  match r.phases with
  | [ p1; p2; p3 ] ->
      check_true "first pays" (p1.writes > 0);
      check_int "second free" 0 p2.writes;
      check_int "third free" 0 p3.writes
  | _ -> Alcotest.fail "three phases expected"

let suite =
  [
    case "traffic make" test_traffic_make;
    case "traffic validation" test_traffic_validation;
    case "traffic from suite" test_traffic_from_suite;
    case "run padr" test_run_padr;
    case "run baseline" test_run_baseline;
    case "compare all" test_compare_all;
    case "padr handles mixed phases" test_padr_handles_mixed_phases;
    case "carry-over across phases" test_carry_over_across_phases;
  ]
